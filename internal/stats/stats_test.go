package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean should be 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 {
		t.Fatalf("mean = %v, want 3", m.Value())
	}
	m.AddN(6, 2)
	if m.Value() != 4.5 || m.Count() != 4 || m.Sum() != 18 {
		t.Fatalf("mean=%v count=%d sum=%v", m.Value(), m.Count(), m.Sum())
	}
}

func TestMeanMerge(t *testing.T) {
	var a, b Mean
	a.Add(1)
	a.Add(3)
	b.Add(5)
	a.Merge(b)
	if a.Value() != 3 || a.Count() != 3 {
		t.Fatalf("merged mean=%v count=%d", a.Value(), a.Count())
	}
}

func TestMeanMatchesNaiveQuick(t *testing.T) {
	f := func(vals []float64) bool {
		var m Mean
		var sum float64
		ok := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue // avoid overflow artefacts unrelated to Mean
			}
			m.Add(v)
			sum += v
			ok++
		}
		if ok == 0 {
			return m.Value() == 0
		}
		want := sum / float64(ok)
		return math.Abs(m.Value()-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5) // [0,50) + overflow
	for _, v := range []float64{0, 4.9, 5, 12, 49.9, 50, 1000, -3} {
		h.Add(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %v", h.Max())
	}
	if h.overflow != 2 {
		t.Fatalf("overflow = %d, want 2 (50 and 1000)", h.overflow)
	}
	if p := h.Percentile(50); p < 0 || p > 15 {
		t.Fatalf("p50 = %v out of plausible range", p)
	}
	if p := h.Percentile(100); p != 50 {
		t.Fatalf("p100 with overflow = %v, want overflow edge 50", p)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(4, 1)
	vals := []float64{0.5, 1.5, 2.5, 100}
	var sum float64
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if got, want := h.Mean(), sum/4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Set(2, 0)  // level 2 from t=0
	tw.Set(4, 10) // level 4 from t=10
	tw.Finish(20)
	// avg = (2*10 + 4*10) / 20 = 3
	if got := tw.Average(); got != 3 {
		t.Fatalf("average = %v, want 3", got)
	}
	if tw.Peak() != 4 {
		t.Fatalf("peak = %v, want 4", tw.Peak())
	}
}

func TestTimeWeightedAt(t *testing.T) {
	tw := NewTimeWeightedAt(5, 100)
	tw.Finish(110)
	if got := tw.Average(); got != 5 {
		t.Fatalf("average = %v, want 5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v, want 0", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Fatalf("geomean of non-positives = %v, want 0", g)
	}
	// Non-positive values are skipped, not zeroing the result.
	if g := GeoMean([]float64{0, 4}); g != 4 {
		t.Fatalf("geomean(0,4) = %v, want 4", g)
	}
}

func TestGeoMeanBetweenMinMaxQuick(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if v > 0 && !math.IsInf(v, 0) && v < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		g := GeoMean(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", "%.2f", 2.5)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("sorted keys = %v", keys)
	}
	mi := map[int]string{3: "x", 1: "y"}
	ki := SortedKeys(mi)
	if ki[0] != 1 || ki[1] != 3 {
		t.Fatalf("sorted int keys = %v", ki)
	}
}
