package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	// Splitting must not advance the parent.
	c1b := parent.Split(1)
	if c1.Uint64() != c1b.Uint64() {
		t.Fatal("Split is not a pure function of (parent state, tag)")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different tags produce identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64RangeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			if v := s.Float64(); v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRangeQuick(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v, want ~0.3", got)
	}
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	for _, m := range []float64{0.5, 2, 10, 50} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Geometric(m))
		}
		got := sum / n
		if math.Abs(got-m) > 0.1*m+0.1 {
			t.Fatalf("Geometric(%v) mean %v, want ~%v", m, got, m)
		}
	}
	if g := s.Geometric(0); g != 0 {
		t.Fatalf("Geometric(0) = %d, want 0", g)
	}
	if g := s.Geometric(-1); g != 0 {
		t.Fatalf("Geometric(-1) = %d, want 0", g)
	}
}

func TestGeometricNonNegativeQuick(t *testing.T) {
	f := func(seed uint64, m uint8) bool {
		s := New(seed)
		mean := float64(m) / 4
		for i := 0; i < 20; i++ {
			if s.Geometric(mean) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	dst := make([]int, 37)
	s.Perm(dst)
	seen := make(map[int]bool, len(dst))
	for _, v := range dst {
		if v < 0 || v >= len(dst) || seen[v] {
			t.Fatalf("not a permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish check: 16 buckets of Intn(16) over 160k draws
	// should each hold ~10k +- 5%.
	s := New(23)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[s.Intn(16)]++
	}
	for b, c := range buckets {
		if c < 9500 || c > 10500 {
			t.Fatalf("bucket %d holds %d, want ~10000", b, c)
		}
	}
}
