package noc

import "repro/internal/stats"

// NetStats aggregates the observability the paper's analysis needs:
// per-type packet latency (Fig 3, 13), flit-weighted traffic mix (Fig 5),
// link and injection-link utilisation (§3), NI injection-queue occupancy
// (Fig 6) and injection stall behaviour (Fig 12 feeds from the MC side).
type NetStats struct {
	Cycles int64

	// Per packet type.
	PacketsInjected [NumPacketTypes]uint64
	PacketsEjected  [NumPacketTypes]uint64
	FlitsInjected   [NumPacketTypes]uint64
	Latency         [NumPacketTypes]stats.Mean // create -> eject, cycles
	NetLatency      [NumPacketTypes]stats.Mean // inject -> eject, cycles

	// Link utilisation: flit traversals over router-to-router mesh links,
	// and over NI-to-router injection links, each with the corresponding
	// capacity (links x cycles) to form flits/cycle/link.
	MeshLinkFlits     uint64
	MeshLinks         int
	InjLinkFlits      uint64
	InjLinks          int
	EjectFlits        uint64
	SwitchTraversals  uint64
	CreditStallCycles uint64 // SA requests blocked on zero credits

	// NIFullRejects counts Offer calls rejected because the NI queue could
	// not take the whole packet (each is one stall observation for Fig 12's
	// underlying mechanism).
	NIFullRejects uint64
}

// AvgLatency returns the mean create-to-eject latency over the given types.
func (s *NetStats) AvgLatency(types ...PacketType) float64 {
	var m stats.Mean
	for _, t := range types {
		m.Merge(s.Latency[t])
	}
	return m.Value()
}

// TotalPackets returns total ejected packets.
func (s *NetStats) TotalPackets() uint64 {
	var n uint64
	for _, c := range s.PacketsEjected {
		n += c
	}
	return n
}

// MeshLinkUtil returns average flits/cycle/link on mesh links.
func (s *NetStats) MeshLinkUtil() float64 {
	if s.Cycles == 0 || s.MeshLinks == 0 {
		return 0
	}
	return float64(s.MeshLinkFlits) / float64(s.Cycles) / float64(s.MeshLinks)
}

// InjLinkUtil returns average flits/cycle/link on NI injection links.
func (s *NetStats) InjLinkUtil() float64 {
	if s.Cycles == 0 || s.InjLinks == 0 {
		return 0
	}
	return float64(s.InjLinkFlits) / float64(s.Cycles) / float64(s.InjLinks)
}

// FlitShare returns the fraction of injected flits belonging to type t
// (the paper's Fig 5 weighting).
func (s *NetStats) FlitShare(t PacketType) float64 {
	var total uint64
	for _, f := range s.FlitsInjected {
		total += f
	}
	if total == 0 {
		return 0
	}
	return float64(s.FlitsInjected[t]) / float64(total)
}

func (s *NetStats) recordEject(p *Packet, now int64) {
	p.EjectedAt = now
	s.PacketsEjected[p.Type]++
	s.Latency[p.Type].Add(float64(now - p.CreatedAt))
	s.NetLatency[p.Type].Add(float64(now - p.InjectedAt))
}
