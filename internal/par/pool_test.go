package par

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 16, 33} {
			var hits [33]int32
			var total int32
			p.Run(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
				atomic.AddInt32(&total, 1)
			})
			if int(total) != n {
				t.Fatalf("workers=%d n=%d: %d invocations", workers, n, total)
			}
			for i := 0; i < n; i++ {
				if hits[i] != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, hits[i])
				}
			}
		}
		p.Close()
	}
}

func TestRunHappensBefore(t *testing.T) {
	p := New(4)
	defer p.Close()
	buf := make([]int, 64)
	for iter := 0; iter < 200; iter++ {
		p.Run(len(buf), func(i int) { buf[i] = iter + i })
		// Reads after Run must observe every worker's writes.
		for i := range buf {
			if buf[i] != iter+i {
				t.Fatalf("iter %d: buf[%d]=%d, want %d", iter, i, buf[i], iter+i)
			}
		}
	}
}

func TestCloseIdempotentAndInlineFallback(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close()
	n := 0
	p.Run(5, func(int) { n++ }) // closed pool runs inline; no atomics needed
	if n != 5 {
		t.Fatalf("inline fallback ran %d times, want 5", n)
	}
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d", nilPool.Workers())
	}
	n = 0
	nilPool.Run(3, func(int) { n++ })
	if n != 3 {
		t.Fatalf("nil pool ran %d times, want 3", n)
	}
}

func TestRunDispatchDoesNotAllocate(t *testing.T) {
	p := New(2)
	defer p.Close()
	var sink [8]int64
	fn := func(i int) { sink[i]++ } // prebuilt closure, reused every Run
	allocs := testing.AllocsPerRun(1000, func() { p.Run(len(sink), fn) })
	if allocs != 0 {
		t.Fatalf("Run allocated %.2f per op, want 0", allocs)
	}
}
