// Kill/restart soak: concurrent retrying clients submit the full 30-kernel
// suite while the server is hard-killed mid-flight and restarted on the same
// address over the same journal. The restarted server must reproduce results
// byte-identical to an uninterrupted run, re-executing only jobs that were
// in flight at the kill — never a completed one.
package serve_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/trace"
)

// soakServer is one server incarnation: runner + journal + HTTP listener.
type soakServer struct {
	srv     *serve.Server
	httpSrv *http.Server
	journal *exp.Journal
	runner  *exp.Runner
	addr    string
}

// startSoakServer boots a server over the journal at path, on addr
// ("127.0.0.1:0" for the first incarnation, the inherited address after a
// restart).
func startSoakServer(t *testing.T, base core.Config, journalPath, addr string) *soakServer {
	t.Helper()
	j, err := exp.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	r := &exp.Runner{Base: base, Journal: j}
	s, err := serve.New(serve.Config{Runner: r, MaxInFlight: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	return &soakServer{srv: s, httpSrv: hs, journal: j, runner: r, addr: ln.Addr().String()}
}

// kill simulates SIGKILL: abort every in-flight run and tear the listener
// down with no drain. Only the fsync'd journal survives.
func (ss *soakServer) kill(t *testing.T) {
	t.Helper()
	ss.srv.Abort()
	ss.httpSrv.Close()
	// Wait for handler goroutines to observe the abort before releasing the
	// journal file to the next incarnation (a real SIGKILL drops the file
	// handle atomically; in-process we must sequence it).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ss.srv.Wait(ctx); err != nil {
		t.Fatalf("aborted jobs did not unwind: %v", err)
	}
	if err := ss.journal.Close(); err != nil {
		t.Fatal(err)
	}
}

// scrapeObservability hammers the observability endpoints of baseURL until
// stop closes: the soak must survive live scraping across the kill window
// (connection errors while the server is down are expected and ignored).
func scrapeObservability(stop <-chan struct{}, done chan<- struct{}, baseURL string) {
	defer func() { done <- struct{}{} }()
	for {
		select {
		case <-stop:
			return
		default:
		}
		for _, p := range []string{"/metrics", "/debug/nocstate", "/v1/stats"} {
			resp, err := http.Get(baseURL + p)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKillRestartSoakByteIdentical(t *testing.T) {
	goroutinesAtStart := runtime.NumGoroutine()
	base := core.DefaultConfig()
	base.Scheme = core.AdaARI
	base.WarmupCycles = 100
	base.MeasureCycles = 300

	suite := trace.Suite()
	if len(suite) != 30 {
		t.Fatalf("suite has %d kernels, want 30", len(suite))
	}

	// Reference: the uninterrupted run, straight on a Runner.
	ref := &exp.Runner{Base: base}
	want, err := ref.RunAll(fullSuiteJobs(base))
	if err != nil {
		t.Fatal(err)
	}

	journalPath := filepath.Join(t.TempDir(), "serve.jsonl")
	ss := startSoakServer(t, base, journalPath, "127.0.0.1:0")
	baseURL := "http://" + ss.addr

	// Live observability scraping for the whole soak, across the kill and
	// the restart; at the end the scrapers must not have pinned anything.
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{}, 2)
	go scrapeObservability(scrapeStop, scrapeDone, baseURL)
	go scrapeObservability(scrapeStop, scrapeDone, baseURL)

	// One concurrent retrying client per kernel; retries ride through the
	// shed responses, the kill, and the restart window.
	cli := &client.Client{
		BaseURL:     baseURL,
		MaxRetries:  500,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(suite))
	resps := make([]serve.JobResponse, len(suite))
	for i, k := range suite {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			resps[i], errs[i] = cli.Submit(ctx, serve.JobRequest{Bench: name})
		}(i, k.Name)
	}

	// Hard-kill once roughly a third of the suite is journalled.
	deadline := time.Now().Add(time.Minute)
	for ss.journal.Len() < 10 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if ss.journal.Len() < 10 {
		t.Fatal("server never reached 10 journalled runs")
	}
	ss.kill(t)
	ranBeforeKill := ss.runner.Runs()

	// Restart on the same address over the same journal, as a fresh process
	// image (new Runner, empty cache).
	ss2 := startSoakServer(t, base, journalPath, ss.addr)
	completedAtKill := ss2.journal.Loaded()
	if completedAtKill < 10 {
		t.Fatalf("journal lost completed jobs across the kill: loaded %d, want >= 10", completedAtKill)
	}
	if completedAtKill > ranBeforeKill {
		t.Fatalf("journal holds %d entries but only %d runs finished", completedAtKill, ranBeforeKill)
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %s failed across the restart: %v", suite[i].Name, err)
		}
	}

	// Byte-identical to the uninterrupted run.
	for i := range suite {
		if got, ref := jobJSON(t, resps[i].Result), jobJSON(t, want[i]); got != ref {
			t.Fatalf("job %s diverged after restart:\n got %s\nwant %s", suite[i].Name, got, ref)
		}
	}
	// Zero completed jobs re-executed: the restarted server simulated
	// exactly the remainder.
	if got, wantRuns := ss2.runner.Runs(), len(suite)-completedAtKill; got != wantRuns {
		t.Fatalf("restarted server ran %d simulations, want %d (suite %d - %d journalled)",
			got, wantRuns, len(suite), completedAtKill)
	}
	// And the journal now holds the whole suite.
	if ss2.journal.Len() != len(suite) {
		t.Fatalf("journal holds %d entries after the soak, want %d", ss2.journal.Len(), len(suite))
	}

	// Clean exit for the second incarnation.
	close(scrapeStop)
	<-scrapeDone
	<-scrapeDone
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := ss2.srv.Shutdown(sctx); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	ss2.httpSrv.Close()
	if err := ss2.journal.Close(); err != nil {
		t.Fatal(err)
	}
	goroutineBaseline(t, goroutinesAtStart)
}
