package simeq

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// newSim wraps core.NewSimulator for tests needing the simulator itself
// (e.g. to drive RunWork instead of Run).
func newSim(cfg core.Config, k trace.Kernel) (*core.Simulator, error) {
	return core.NewSimulator(cfg, k)
}
