package noc

import "fmt"

// NIMode selects the network-interface / injection architecture at a node
// (paper §4 and §6.2 scheme list).
type NIMode uint8

const (
	// NIBaseline is the enhanced baseline of §4.1: wide MC→NI and NI→queue
	// links (a whole packet enters the single NI injection queue in one
	// cycle), narrow NI→router link (one flit per cycle into one of the
	// injection-port VCs chosen by the NI).
	NIBaseline NIMode = iota
	// NISplit is the ARI supply architecture: the NI queue is split into
	// one one-packet-capable queue per injection VC, each with its own
	// narrow link wired directly to that VC, so up to VCs flits enter the
	// injection port per cycle.
	NISplit
	// NIMultiPort is the MultiPort scheme of Bakhoda et al. [3]: the router
	// has several injection input ports (each a full input port with its
	// own switch-port), but the NI still supplies at most one flit per
	// cycle in total, so injection is consumption-improved only.
	NIMultiPort
	// NINarrowLink is the *default* (unenhanced) baseline of GPGPU-Sim the
	// paper starts from (§4.1): the MC->NI link is narrow, so handing a
	// packet to the NI occupies the link for Size cycles instead of one.
	// The paper replaces it with NIBaseline "to avoid giving unfair
	// advantage to our proposed design"; this mode exists so that choice
	// can be quantified.
	NINarrowLink
)

// String returns the mode name.
func (m NIMode) String() string {
	switch m {
	case NIBaseline:
		return "baseline"
	case NISplit:
		return "split"
	case NIMultiPort:
		return "multiport"
	case NINarrowLink:
		return "narrowlink"
	default:
		return fmt.Sprintf("NIMode(%d)", uint8(m))
	}
}

// NodeConfig is the per-node injection architecture. The zero value is the
// enhanced baseline (one injection port, no crossbar speedup).
type NodeConfig struct {
	NI NIMode
	// InjPorts is the number of injection input ports (>= 1). Values > 1
	// are the MultiPort scheme.
	InjPorts int
	// InjSpeedup is the crossbar speedup S of each injection port (§4.2):
	// the number of switch-ports the injection port owns. 1 = baseline.
	// Values above the VC count are clamped (eq. 2).
	InjSpeedup int
}

func (nc NodeConfig) injPorts() int {
	if nc.InjPorts < 1 {
		return 1
	}
	return nc.InjPorts
}

func (nc NodeConfig) injSpeedup(vcs int) int {
	s := nc.InjSpeedup
	if s < 1 {
		s = 1
	}
	if s > vcs {
		s = vcs // eq. (2): no benefit beyond NVC switch-ports
	}
	return s
}

// Config describes one network (the request and reply networks are two
// independent Config/Network instances).
type Config struct {
	Mesh Mesh

	// VCs is the number of virtual channels per router port (Table I: 4).
	VCs int
	// VCDepth is the buffer depth of each VC in flits (Table I: 1 packet).
	VCDepth int
	// LinkBits is the link (flit) width in bits (Table I: 128).
	LinkBits int
	// DataBytes is the payload of long packets in bytes (128B cache line).
	DataBytes int

	Routing RoutingAlgo
	// PipelineStages is the router pipeline depth in cycles: 1 (default)
	// models an aggressive single-cycle router; larger values delay a
	// flit's availability at the next hop by stages-1 extra cycles,
	// modelling deeper RC/VA/SA/ST pipelines.
	PipelineStages int
	// NonAtomicVC enables non-atomic VC allocation (WPF [28]): a free VC
	// may be allocated to a packet whenever it has credits for the whole
	// packet, rather than only when completely empty. The paper enables it
	// for both XY and adaptive routing (§6.2).
	NonAtomicVC bool

	// NIQueueFlits is the total NI injection queue capacity in flits
	// (Table I: 36 = four 9-flit long packets at 128-bit links). Split NIs
	// divide the same total across VCs for fair comparison (§6.2).
	NIQueueFlits int
	// EjectRate is how many flits per cycle the ejection NI consumes.
	EjectRate int

	// PriorityLevels enables the ARI multi-level prioritisation (§5) when
	// >= 2. Packets are generated at level PriorityLevels-1 and decremented
	// at each route computation. 0 or 1 disables priority arbitration.
	PriorityLevels int
	// StarvationLimit is the wait threshold (cycles) after which injection
	// priority is suppressed at a router (§5; 1k cycles in the paper).
	StarvationLimit int64

	// ScanStep forces the original scan-everything stepping loop, in which
	// every router, NI and ejector is visited every cycle. The default
	// (false) is event-driven stepping, which visits only components that
	// hold flits; the two are bit-identical (see DESIGN.md §"Event-driven
	// stepping" and internal/simeq), so this flag exists purely for
	// differential testing and as a debugging escape hatch.
	ScanStep bool

	// RetransBufPkts, when positive, enables the fault-recovery protocol
	// layer (recovery.go): sending NIs stamp a CRC over each packet, retain
	// up to RetransBufPkts unacknowledged packets for retransmission, and
	// receiving NIs drop-and-NACK corrupted packets instead of delivering
	// them. 0 (default) disables recovery: corruption, if injected, is
	// delivered undetected — the unprotected-network contrast case.
	RetransBufPkts int

	// CheckEvery, when positive, runs CheckInvariants every CheckEvery
	// cycles at the end of Step and panics on the first violation. It is an
	// opt-in self-check for test suites, soaks and debugging; the check is
	// O(buffers), so it is off by default.
	CheckEvery int64

	// Nodes optionally overrides the injection architecture per node id.
	// Missing/zero entries are the enhanced baseline.
	Nodes []NodeConfig
}

// Validate checks invariants and fills defaults; it returns the normalised
// config.
func (c Config) Validate() (Config, error) {
	if c.Mesh.Width <= 0 || c.Mesh.Height <= 0 {
		return c, fmt.Errorf("noc: mesh %dx%d invalid", c.Mesh.Width, c.Mesh.Height)
	}
	if c.VCs <= 0 {
		return c, fmt.Errorf("noc: VCs must be positive, got %d", c.VCs)
	}
	if c.VCs > 32 {
		return c, fmt.Errorf("noc: at most 32 VCs supported, got %d", c.VCs)
	}
	if c.LinkBits < 8 {
		return c, fmt.Errorf("noc: link width %d bits too narrow", c.LinkBits)
	}
	if c.DataBytes <= 0 {
		return c, fmt.Errorf("noc: DataBytes must be positive, got %d", c.DataBytes)
	}
	longPkt := PacketSize(ReadReply, c.LinkBits, c.DataBytes)
	if c.VCDepth == 0 {
		c.VCDepth = longPkt // Table I: 1 packet per VC
	}
	if c.VCDepth < longPkt {
		return c, fmt.Errorf("noc: VCDepth %d flits cannot hold a %d-flit packet", c.VCDepth, longPkt)
	}
	if c.NIQueueFlits == 0 {
		c.NIQueueFlits = 4 * longPkt
	}
	if c.NIQueueFlits < longPkt {
		return c, fmt.Errorf("noc: NI queue %d flits cannot hold a %d-flit packet", c.NIQueueFlits, longPkt)
	}
	if c.EjectRate <= 0 {
		c.EjectRate = 1
	}
	if c.PipelineStages <= 0 {
		c.PipelineStages = 1
	}
	if c.PipelineStages > 8 {
		return c, fmt.Errorf("noc: pipeline depth %d beyond supported 8", c.PipelineStages)
	}
	if c.StarvationLimit <= 0 {
		c.StarvationLimit = 1000
	}
	if c.RetransBufPkts < 0 {
		return c, fmt.Errorf("noc: RetransBufPkts must be >= 0, got %d", c.RetransBufPkts)
	}
	if c.Nodes != nil && len(c.Nodes) != c.Mesh.Nodes() {
		return c, fmt.Errorf("noc: Nodes has %d entries for a %d-node mesh", len(c.Nodes), c.Mesh.Nodes())
	}
	return c, nil
}

// node returns the per-node config (zero value when not overridden).
func (c *Config) node(id int) NodeConfig {
	if c.Nodes == nil {
		return NodeConfig{}
	}
	return c.Nodes[id]
}

// LongPacketFlits returns the flit count of long packets under this config.
func (c *Config) LongPacketFlits() int {
	return PacketSize(ReadReply, c.LinkBits, c.DataBytes)
}
