package obs

import (
	"sync"
	"time"
)

// SLO tracking (DESIGN.md §15): objectives of the form "a fraction Goal of
// events must be good", where an event is good when its observed latency is
// at or below the objective's threshold (and failures are never good).
// The tracker keeps a ring of coarse time slots so it can report the error
// rate — and from it the burn rate, the SRE multi-window alerting signal —
// over several trailing windows without storing per-event data.
//
// Burn rate is errorRate / (1 - Goal): 1.0 means the error budget is being
// consumed exactly at the sustainable pace, 14.4 means a 99.9% monthly
// budget would be gone in two days. The standard multi-window rule pages
// when both a short and a long window burn fast simultaneously — the short
// window proves it is still happening, the long one that it is material.

// Objective is one latency SLO.
type Objective struct {
	// Name labels the objective in reports and metrics.
	Name string `json:"name"`
	// Threshold is the good/bad latency boundary in the tracker's units
	// (microseconds for the serving layer, cycles for simulated latency).
	Threshold int64 `json:"threshold"`
	// Goal is the target good fraction, e.g. 0.99.
	Goal float64 `json:"goal"`
}

// WindowBurn is one trailing window's error/burn reading.
type WindowBurn struct {
	Window    string  `json:"window"` // e.g. "5m0s"
	Events    uint64  `json:"events"`
	ErrorRate float64 `json:"error_rate"`
	BurnRate  float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's row in an SLOReport.
type ObjectiveStatus struct {
	Objective
	// Good/Total count events since process start; Compliance is their
	// ratio (1 when no events yet — an idle service is in SLO).
	Good       uint64  `json:"good"`
	Total      uint64  `json:"total"`
	Compliance float64 `json:"compliance"`
	// Windows holds the trailing-window burn readings, shortest first.
	Windows []WindowBurn `json:"windows"`
	// Alerting is the multi-window page signal: the two shortest windows
	// both burn faster than AlertBurn.
	Alerting bool `json:"alerting"`
}

// SLOReport is the /debug/slo payload.
type SLOReport struct {
	Objectives []ObjectiveStatus `json:"objectives"`
}

// AlertBurn is the burn-rate threshold of the page signal: a 99.9% budget
// consumed 14.4x too fast exhausts a 30-day budget in ~2 days.
const AlertBurn = 14.4

// DefaultBurnWindows are the trailing windows reported per objective.
var DefaultBurnWindows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}

// SLOTracker classifies observed events against a set of objectives and
// aggregates them into lifetime compliance plus multi-window burn rates.
// Safe for concurrent use.
type SLOTracker struct {
	objectives []Objective
	windows    []time.Duration
	slot       time.Duration
	now        func() time.Time

	mu    sync.Mutex
	slots []sloSlot // ring indexed by (slot index % len)
	good  []uint64  // lifetime, per objective
	total uint64    // lifetime
}

// sloSlot is one time-granule of counts.
type sloSlot struct {
	index int64 // absolute slot number; 0 count rows from other eras ignored
	total uint64
	good  []uint64
}

// NewSLOTracker builds a tracker over the objectives with DefaultBurnWindows
// at 10s slot granularity.
func NewSLOTracker(objectives []Objective) *SLOTracker {
	return newSLOTracker(objectives, DefaultBurnWindows, 10*time.Second, time.Now)
}

// newSLOTracker is the fully parameterised constructor (tests inject a fake
// clock and short windows).
func newSLOTracker(objectives []Objective, windows []time.Duration, slot time.Duration, now func() time.Time) *SLOTracker {
	if slot <= 0 {
		slot = 10 * time.Second
	}
	if len(windows) == 0 {
		windows = DefaultBurnWindows
	}
	maxW := windows[len(windows)-1]
	for _, w := range windows {
		if w > maxW {
			maxW = w
		}
	}
	n := int(maxW/slot) + 1
	t := &SLOTracker{
		objectives: objectives,
		windows:    windows,
		slot:       slot,
		now:        now,
		slots:      make([]sloSlot, n),
		good:       make([]uint64, len(objectives)),
	}
	for i := range t.slots {
		t.slots[i].good = make([]uint64, len(objectives))
	}
	return t
}

// Objectives returns the tracked objectives.
func (t *SLOTracker) Objectives() []Objective { return t.objectives }

// Observe records one successful event with the given latency; it is good
// for every objective whose threshold it meets.
func (t *SLOTracker) Observe(v int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.currentSlotLocked()
	s.total++
	t.total++
	for i, o := range t.objectives {
		if v <= o.Threshold {
			s.good[i]++
			t.good[i]++
		}
	}
}

// Fail records one failed event (shed, errored): it counts against every
// objective regardless of how fast the failure was produced.
func (t *SLOTracker) Fail() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.currentSlotLocked().total++
	t.total++
}

// currentSlotLocked returns the ring slot for now, resetting it when it
// still holds counts from a previous lap.
func (t *SLOTracker) currentSlotLocked() *sloSlot {
	idx := t.now().UnixNano() / int64(t.slot)
	s := &t.slots[int(idx%int64(len(t.slots)))]
	if s.index != idx {
		s.index = idx
		s.total = 0
		for i := range s.good {
			s.good[i] = 0
		}
	}
	return s
}

// Report snapshots every objective's compliance and burn rates.
func (t *SLOTracker) Report() SLOReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	nowIdx := t.now().UnixNano() / int64(t.slot)

	rep := SLOReport{Objectives: make([]ObjectiveStatus, len(t.objectives))}
	for oi, o := range t.objectives {
		st := ObjectiveStatus{Objective: o, Good: t.good[oi], Total: t.total, Compliance: 1}
		if t.total > 0 {
			st.Compliance = float64(t.good[oi]) / float64(t.total)
		}
		for _, w := range t.windows {
			span := int64(w / t.slot)
			var total, good uint64
			for _, s := range t.slots {
				if s.index > nowIdx-span && s.index <= nowIdx {
					total += s.total
					good += s.good[oi]
				}
			}
			wb := WindowBurn{Window: w.String(), Events: total}
			if total > 0 {
				wb.ErrorRate = float64(total-good) / float64(total)
			}
			if budget := 1 - o.Goal; budget > 0 {
				wb.BurnRate = wb.ErrorRate / budget
			}
			st.Windows = append(st.Windows, wb)
		}
		if len(st.Windows) >= 2 {
			st.Alerting = st.Windows[0].BurnRate >= AlertBurn && st.Windows[1].BurnRate >= AlertBurn
		} else if len(st.Windows) == 1 {
			st.Alerting = st.Windows[0].BurnRate >= AlertBurn
		}
		rep.Objectives[oi] = st
	}
	return rep
}

// WriteMetrics renders the report as Prometheus gauges under the given
// prefix: <prefix>_slo_compliance{objective=...} and
// <prefix>_slo_burn_rate{objective=...,window=...}.
func (r SLOReport) WriteMetrics(p *PromWriter, prefix string) {
	p.Family(prefix+"_slo_compliance", "Lifetime good-event fraction per objective.", "gauge")
	for _, o := range r.Objectives {
		p.Sample(prefix+"_slo_compliance", Labels("objective", o.Name), o.Compliance)
	}
	p.Family(prefix+"_slo_burn_rate", "Error-budget burn rate per objective and trailing window (1 = sustainable).", "gauge")
	for _, o := range r.Objectives {
		for _, w := range o.Windows {
			p.Sample(prefix+"_slo_burn_rate", Labels("objective", o.Name, "window", w.Window), w.BurnRate)
		}
	}
	p.Family(prefix+"_slo_alerting", "Multi-window page signal: the two shortest windows both burn above 14.4.", "gauge")
	for _, o := range r.Objectives {
		p.Sample(prefix+"_slo_alerting", Labels("objective", o.Name), Bool(o.Alerting))
	}
}
