// Peer result-fetch tests: a job journaled on replica A is served from
// replica B through GET /v1/results/<key> without re-running, adopted into
// B's own journal for durability; a replica partitioned from its peers
// degrades to running jobs itself.
package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/serve"
)

// startPeerServer boots one replica over its own journal, optionally
// pointed at peers.
func startPeerServer(t *testing.T, base core.Config, journalPath string, peers []string) (*httptest.Server, *exp.Runner, *serve.Server) {
	t.Helper()
	j, err := exp.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	r := &exp.Runner{Base: base, Journal: j}
	s, err := serve.New(serve.Config{
		Runner: r, MaxInFlight: 2, QueueDepth: 4,
		Peers: peers, PeerTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, r, s
}

func submitJob(t *testing.T, url string, req serve.JobRequest) serve.JobResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit to %s: %s", url, resp.Status)
	}
	var out serve.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPeerFetchServesWithoutRerun(t *testing.T) {
	base := core.DefaultConfig()
	base.Scheme = core.AdaARI
	base.WarmupCycles = 50
	base.MeasureCycles = 150
	dir := t.TempDir()

	// Replica A computes the job.
	tsA, rA, _ := startPeerServer(t, base, filepath.Join(dir, "a.jsonl"), nil)
	respA := submitJob(t, tsA.URL, serve.JobRequest{Bench: "bfs"})
	if respA.Cached || rA.Runs() != 1 {
		t.Fatalf("replica A should have run the job: cached=%v runs=%d", respA.Cached, rA.Runs())
	}

	// The peer endpoint serves it by key; an unknown key is 404; POST is 405.
	get, err := http.Get(tsA.URL + "/v1/results/" + respA.Key)
	if err != nil {
		t.Fatal(err)
	}
	var fetched serve.JobResponse
	if err := json.NewDecoder(get.Body).Decode(&fetched); err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusOK || !fetched.Cached || fetched.Result.Benchmark != "bfs" {
		t.Fatalf("peer endpoint: %s, %+v", get.Status, fetched)
	}
	if nf, err := http.Get(tsA.URL + "/v1/results/deadbeef"); err != nil || nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: %v %v", nf.Status, err)
	} else {
		nf.Body.Close()
	}
	if post, err := http.Post(tsA.URL+"/v1/results/x", "application/json", nil); err != nil || post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on results: %v %v", post.Status, err)
	} else {
		post.Body.Close()
	}

	// Replica B, peered with A, serves the same job via peer fetch: zero
	// local runs, the answer byte-identical, the record adopted durably.
	bJournal := filepath.Join(dir, "b.jsonl")
	tsB, rB, sB := startPeerServer(t, base, bJournal, []string{tsA.URL})
	respB := submitJob(t, tsB.URL, serve.JobRequest{Bench: "bfs"})
	if !respB.Cached || respB.Peer != tsA.URL {
		t.Fatalf("replica B did not serve via peer fetch: %+v", respB)
	}
	if rB.Runs() != 0 {
		t.Fatalf("replica B re-ran a peer-journaled job: %d runs", rB.Runs())
	}
	gotA, _ := json.Marshal(respA.Result)
	gotB, _ := json.Marshal(respB.Result)
	if string(gotA) != string(gotB) {
		t.Fatalf("peer-fetched result diverged:\nA: %s\nB: %s", gotA, gotB)
	}
	if st := sB.Stats(); st.PeerHits != 1 {
		t.Fatalf("PeerHits = %d, want 1", st.PeerHits)
	}
	// Adoption is durable: a fresh journal handle holds the key.
	j2, err := exp.OpenJournal(bJournal)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, ok := j2.Get(respA.Key); !ok {
		t.Fatal("replica B did not journal the adopted result")
	}
	// A later duplicate on B is a plain local cache hit, not a peer hit.
	respB2 := submitJob(t, tsB.URL, serve.JobRequest{Bench: "bfs"})
	if !respB2.Cached || respB2.Peer != "" {
		t.Fatalf("duplicate after adoption went back to the peer: %+v", respB2)
	}
}

func TestPeerPartitionFallsBackToLocalRun(t *testing.T) {
	base := core.DefaultConfig()
	base.Scheme = core.XYBaseline
	base.WarmupCycles = 50
	base.MeasureCycles = 150

	// A peer URL that refuses connections: the replica must run locally,
	// not fail or hang.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	ts, r, _ := startPeerServer(t, base, filepath.Join(t.TempDir(), "p.jsonl"), []string{deadURL})
	start := time.Now()
	resp := submitJob(t, ts.URL, serve.JobRequest{Bench: "bfs"})
	if resp.Cached || resp.Peer != "" || r.Runs() != 1 {
		t.Fatalf("partitioned replica did not run locally: %+v runs=%d", resp, r.Runs())
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("partitioned submit took %s", took)
	}
}
