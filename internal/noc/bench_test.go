package noc

import "testing"

// benchNet builds a loaded 6x6 reply-like network for stepping benchmarks.
func benchNet(b *testing.B, ari bool) *Network {
	b.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	cfg := Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
	}
	if ari {
		cfg.Nodes = make([]NodeConfig, mesh.Nodes())
		for _, n := range DiamondMCPlacement(mesh, 8) {
			cfg.Nodes[n] = NodeConfig{NI: NISplit, InjSpeedup: 4}
		}
		cfg.PriorityLevels = 2
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.SetEjectHandler(func(int, *Packet, int64) {})
	return n
}

// stepLoaded drives the network at a steady few-to-many load per iteration.
func stepLoaded(b *testing.B, n *Network) {
	mcs := DiamondMCPlacement(n.Config().Mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	cfg := n.Config()
	long := cfg.LongPacketFlits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := mcs[i%len(mcs)]
		n.Inject(mc, &Packet{Type: ReadReply, Dst: next(36), Size: long})
		n.Step()
	}
}

func BenchmarkNetworkStepBaseline(b *testing.B) { stepLoaded(b, benchNet(b, false)) }
func BenchmarkNetworkStepARI(b *testing.B)      { stepLoaded(b, benchNet(b, true)) }

func BenchmarkRouteCompute(b *testing.B) {
	m := Mesh{Width: 8, Height: 8}
	var scratch []routeCandidate
	for i := 0; i < b.N; i++ {
		scratch = computeRoute(m, RouteMinAdaptive, i%64, (i*7)%64, 4, scratch[:0])
	}
}

func BenchmarkFlitQueue(b *testing.B) {
	q := newFlitQueue(9)
	pkt := &Packet{Size: 9}
	for i := 0; i < b.N; i++ {
		for s := 0; s < 9; s++ {
			q.push(flit{pkt: pkt, seq: s})
		}
		for s := 0; s < 9; s++ {
			q.pop()
		}
	}
}
