// Package fault is deterministic, seeded fault injection for the NoC. It
// models five hardware fault classes on a *noc.Network:
//
//   - link stalls: a router output link (mesh or ejection) grants nothing
//     for a bounded window (noc.Network.StallLink);
//   - input-port freezes: a router input port's VCs stop bidding for the
//     switch (noc.Network.FreezeInputPort);
//   - NI backpressure bursts: a node's NI supplies no flits, backing its
//     queues up into the node logic (noc.Network.StallNISupply);
//   - flit corruption bursts: every flit crossing one output link inside a
//     bounded window is damaged in transit (noc.Network.CorruptLink); the
//     NI-side recovery protocol (noc recovery layer) must detect each
//     damaged packet by checksum, NACK it, and retransmit — so corruption
//     requires the network's retransmission buffers to be enabled;
//   - permanent link death: one mesh link stops forwarding forever
//     (noc.Network.KillLink), and fault-adaptive routing must detour
//     around it. Kills that would disconnect the mesh are refused by the
//     network's connectivity guard; the injector simply records nothing
//     for a refused kill, keeping the draw stream aligned.
//
// The first three are pure service stalls — buffers, credits and ownership
// are never touched — so credit-based wormhole flow control must absorb
// them with zero flit loss. The last two are recovered by protocol: the
// soak suites in this package pin zero *undetected* corruption (every
// packet delivered exactly once, checksum intact) and clean
// noc.CheckInvariants at every boundary. All randomness flows through
// internal/rng, so a (Config, seed) pair replays the identical fault
// schedule and the simulation stays bit-for-bit reproducible.
package fault

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/rng"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// LinkStall stalls one router output link.
	LinkStall Kind = iota
	// PortFreeze freezes one router mesh input port.
	PortFreeze
	// NIStall stalls one node's NI supply.
	NIStall
	// FlitCorrupt damages every flit crossing one output link for a window.
	// New kinds append after the original three so a config that leaves
	// their probabilities at zero consumes exactly the historical draw
	// stream (rng.Bool(0) draws nothing) and replays legacy schedules
	// byte-identically.
	FlitCorrupt
	// LinkDeath permanently kills one mesh link.
	LinkDeath
	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case LinkStall:
		return "link-stall"
	case PortFreeze:
		return "port-freeze"
	case NIStall:
		return "ni-stall"
	case FlitCorrupt:
		return "flit-corrupt"
	case LinkDeath:
		return "link-death"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config parameterises one injector. The zero value injects nothing.
type Config struct {
	// Enabled gates injection entirely (so a Config can ride inside a larger
	// configuration struct without being active).
	Enabled bool
	// Seed seeds the fault schedule. Injectors split per-network streams off
	// it, so request- and reply-side schedules are decorrelated but both
	// fully determined by (Config, Seed).
	Seed uint64

	// LinkStallProb, PortFreezeProb, NIStallProb, CorruptProb and
	// LinkDeathProb are per-cycle probabilities of starting one fault of
	// that kind somewhere in the network (one Bernoulli draw per kind per
	// cycle, not per component).
	LinkStallProb  float64
	PortFreezeProb float64
	NIStallProb    float64
	// CorruptProb > 0 requires the network's fault-recovery layer
	// (noc.Config.RetransBufPkts > 0): corruption without checksum
	// detection and retransmission would be silent data loss, and
	// NewInjector rejects that combination.
	CorruptProb   float64
	LinkDeathProb float64

	// MaxDeadLinks caps permanent link kills over the whole run (0 = 2).
	// Once reached, LinkDeath draws stop before consuming site draws, so
	// the rest of the schedule is unchanged.
	MaxDeadLinks int

	// MaxEvents caps the retained Events() log (0 = 65536). Beyond the cap
	// events are injected but not retained; DroppedEvents counts them and
	// TotalEvents keeps the true injected count.
	MaxEvents int

	// MinDuration and MaxDuration bound each fault's length in cycles
	// (inclusive). Zero values default to [8, 64].
	MinDuration int
	MaxDuration int

	// MaxConcurrent caps simultaneously active faults (0 = 8). The cap keeps
	// a high-probability configuration from freezing the whole mesh at once,
	// which would read as a watchdog deadlock rather than a transient fault.
	MaxConcurrent int
}

// Validate checks bounds and fills defaults, returning the normalised config.
func (c Config) Validate() (Config, error) {
	for _, p := range []float64{c.LinkStallProb, c.PortFreezeProb, c.NIStallProb, c.CorruptProb, c.LinkDeathProb} {
		if p < 0 || p > 1 {
			return c, fmt.Errorf("fault: probability %v outside [0,1]", p)
		}
	}
	if c.MinDuration < 0 || c.MaxDuration < 0 {
		return c, fmt.Errorf("fault: negative duration bounds [%d,%d]", c.MinDuration, c.MaxDuration)
	}
	if c.MaxDeadLinks < 0 {
		return c, fmt.Errorf("fault: negative MaxDeadLinks %d", c.MaxDeadLinks)
	}
	if c.MaxEvents < 0 {
		return c, fmt.Errorf("fault: negative MaxEvents %d", c.MaxEvents)
	}
	if c.MinDuration == 0 {
		c.MinDuration = 8
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 64
	}
	if c.MaxDuration < c.MinDuration {
		return c, fmt.Errorf("fault: MaxDuration %d < MinDuration %d", c.MaxDuration, c.MinDuration)
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxDeadLinks == 0 {
		c.MaxDeadLinks = 2
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 65536
	}
	return c, nil
}

// SoakConfig returns the stress configuration the fault soak suites use:
// frequent, short, overlapping faults of all three kinds.
func SoakConfig(seed uint64) Config {
	return Config{
		Enabled:        true,
		Seed:           seed,
		LinkStallProb:  0.05,
		PortFreezeProb: 0.03,
		NIStallProb:    0.03,
		MinDuration:    4,
		MaxDuration:    48,
		MaxConcurrent:  6,
	}
}

// ChaosConfig returns the chaos-soak configuration: every SoakConfig stall
// kind layered with frequent flit-corruption bursts and rare permanent
// link deaths. It requires a network with the recovery layer enabled
// (noc.Config.RetransBufPkts > 0).
func ChaosConfig(seed uint64) Config {
	c := SoakConfig(seed)
	c.CorruptProb = 0.02
	c.LinkDeathProb = 0.002
	c.MaxDeadLinks = 3
	return c
}

// Event records one injected fault for replay verification and diagnostics.
type Event struct {
	Cycle int64
	Kind  Kind
	Node  int
	Port  int // output port (LinkStall/FlitCorrupt/LinkDeath), input port (PortFreeze), -1 (NIStall)
	// Duration is the fault window in cycles; -1 marks a permanent fault
	// (LinkDeath).
	Duration int
}

// String renders the event for logs.
func (e Event) String() string {
	switch {
	case e.Duration < 0:
		return fmt.Sprintf("cycle %d: %s node %d port %d permanently", e.Cycle, e.Kind, e.Node, e.Port)
	case e.Port < 0:
		return fmt.Sprintf("cycle %d: %s node %d for %d cycles", e.Cycle, e.Kind, e.Node, e.Duration)
	default:
		return fmt.Sprintf("cycle %d: %s node %d port %d for %d cycles", e.Cycle, e.Kind, e.Node, e.Port, e.Duration)
	}
}

// Injector drives one network's fault schedule. Call Step(now) once per
// cycle immediately before the network's own Step; the injector draws the
// cycle's faults and applies them through the network's fault hooks.
type Injector struct {
	cfg     Config
	net     *noc.Network
	src     *rng.Source
	nodes   int
	events  []Event
	total   uint64  // all injected faults, including ones dropped from events
	dropped uint64  // events not retained because of cfg.MaxEvents
	expires []int64 // active-fault expiry cycles (pruned each Step)
}

// NewInjector builds an injector for net. streamTag decorrelates multiple
// injectors sharing one seed (e.g. request vs reply network).
func NewInjector(cfg Config, net *noc.Network, streamTag uint64) (*Injector, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.Enabled && cfg.CorruptProb > 0 && net.Config().RetransBufPkts <= 0 {
		return nil, fmt.Errorf("fault: CorruptProb %v needs the recovery layer; set noc.Config.RetransBufPkts > 0",
			cfg.CorruptProb)
	}
	return &Injector{
		cfg:   cfg,
		net:   net,
		src:   rng.New(cfg.Seed).Split(streamTag),
		nodes: net.Config().Mesh.Nodes(),
	}, nil
}

// Step draws and applies this cycle's faults. It must be called with the
// network's current cycle, before net.Step().
func (in *Injector) Step(now int64) {
	if !in.cfg.Enabled {
		return
	}
	// Prune expired faults from the concurrency ledger.
	kept := in.expires[:0]
	for _, e := range in.expires {
		if e > now {
			kept = append(kept, e)
		}
	}
	in.expires = kept

	// One Bernoulli draw per kind per cycle, in fixed order, so the stream
	// consumption — and therefore the schedule — is deterministic.
	for k := Kind(0); k < numKinds; k++ {
		p := 0.0
		switch k {
		case LinkStall:
			p = in.cfg.LinkStallProb
		case PortFreeze:
			p = in.cfg.PortFreezeProb
		case NIStall:
			p = in.cfg.NIStallProb
		case FlitCorrupt:
			p = in.cfg.CorruptProb
		case LinkDeath:
			p = in.cfg.LinkDeathProb
		}
		if !in.src.Bool(p) {
			continue
		}
		if k == LinkDeath {
			// Permanent faults bypass the transient concurrency ledger and
			// have their own cap, checked before any site draw so a capped
			// schedule consumes no extra stream.
			if in.net.DeadLinks() < in.cfg.MaxDeadLinks {
				in.applyDeath(now)
			}
			continue
		}
		if len(in.expires) >= in.cfg.MaxConcurrent {
			continue // draw consumed above: the schedule stays aligned
		}
		in.apply(k, now)
	}
}

// apply draws the fault's site and duration and installs it.
func (in *Injector) apply(k Kind, now int64) {
	node := in.src.Intn(in.nodes)
	dur := in.cfg.MinDuration + in.src.Intn(in.cfg.MaxDuration-in.cfg.MinDuration+1)
	until := now + int64(dur)
	port := -1
	switch k {
	case LinkStall:
		port = in.src.Intn(noc.NumDirections + 1) // mesh links + ejection link
		in.net.StallLink(node, port, until)
	case PortFreeze:
		port = in.src.Intn(noc.NumDirections) // mesh input ports
		in.net.FreezeInputPort(node, port, until)
	case NIStall:
		in.net.StallNISupply(node, until)
	case FlitCorrupt:
		port = in.src.Intn(noc.NumDirections + 1) // mesh links + ejection link
		in.net.CorruptLink(node, port, until)
	}
	in.recordEvent(Event{Cycle: now, Kind: k, Node: node, Port: port, Duration: dur})
	in.expires = append(in.expires, until)
}

// applyDeath draws a kill site and asks the network to kill the link. The
// network refuses kills with no link or that would disconnect the mesh;
// a refused kill records nothing but has already consumed its site draws,
// so the remaining schedule is unaffected by which kills succeed.
func (in *Injector) applyDeath(now int64) {
	node := in.src.Intn(in.nodes)
	port := in.src.Intn(noc.NumDirections) // only mesh links can die
	if in.net.KillLink(node, port) {
		in.recordEvent(Event{Cycle: now, Kind: LinkDeath, Node: node, Port: port, Duration: -1})
	}
}

// recordEvent retains e up to the MaxEvents cap; injection itself already
// happened, so past the cap only the log entry is dropped (and counted).
func (in *Injector) recordEvent(e Event) {
	in.total++
	if len(in.events) >= in.cfg.MaxEvents {
		in.dropped++
		return
	}
	in.events = append(in.events, e)
}

// Events returns a copy of the injected-fault log in injection order.
// Callers may retain or mutate the returned slice freely; the injector's
// own log stays private so later injections can never alias it.
func (in *Injector) Events() []Event {
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// TotalEvents returns the number of faults injected, including any whose
// log entries were dropped by the MaxEvents cap.
func (in *Injector) TotalEvents() uint64 { return in.total }

// DroppedEvents returns the number of log entries dropped by MaxEvents.
func (in *Injector) DroppedEvents() uint64 { return in.dropped }

// Active returns the number of faults still in force at cycle now.
func (in *Injector) Active(now int64) int {
	active := 0
	for _, e := range in.expires {
		if e > now {
			active++
		}
	}
	return active
}
